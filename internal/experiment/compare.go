package experiment

import (
	"fmt"

	"github.com/rgbproto/rgb/internal/analytic"
	"github.com/rgbproto/rgb/internal/core"
	"github.com/rgbproto/rgb/internal/ids"
	"github.com/rgbproto/rgb/internal/metrics"
	"github.com/rgbproto/rgb/internal/reliability"
	"github.com/rgbproto/rgb/internal/simnet"
	"github.com/rgbproto/rgb/internal/tree"
)

// TableICell pairs one Table I row with hop counts measured on the
// simulated hierarchies, plus the deviation of measurement from
// formula. DeviationRing is zero when the simulator reproduces
// formula (6) exactly; the tree side keeps the known one-hop
// discrepancy of the h=5 rows (see EXPERIMENTS.md).
type TableICell struct {
	Row           analytic.TableIRow `json:"row"`
	MeasuredRing  uint64             `json:"measured_ring"`
	MeasuredTree  uint64             `json:"measured_tree"`
	DeviationRing float64            `json:"deviation_ring"`
	DeviationTree float64            `json:"deviation_tree"`
}

// CompareTableI measures every Table I row on the simulated ring and
// tree hierarchies, one row per worker-pool job. Row order and values
// are independent of the worker count.
func CompareTableI(workers int, seed uint64) []TableICell {
	rows := analytic.TableI()
	out := make([]TableICell, len(rows))
	fanOut(len(rows), workers, func(i int) {
		row := rows[i]

		cfg := core.DefaultConfig(row.RingH, row.R)
		cfg.Seed = seed
		cfg.Latency = simnet.ConstantLatency(1_000_000)
		sys := core.NewSystem(cfg)
		ring, err := sys.MeasureDisseminationHops(ids.GUID(1), sys.APs()[0])
		if err != nil {
			panic(err) // Table I configurations are always valid
		}

		svc := tree.NewService(row.TreeH, row.R, true, seed)
		treeHops := svc.MeasureRound(ids.GUID(1), svc.Tree().Leaves()[0]).FloodHops

		out[i] = TableICell{
			Row:           row,
			MeasuredRing:  ring,
			MeasuredTree:  treeHops,
			DeviationRing: deviation(float64(ring), float64(row.HCNRing)),
			DeviationTree: deviation(float64(treeHops), float64(row.HCNTree)),
		}
	})
	return out
}

// TableIICell pairs one Table II row with its Monte-Carlo estimate
// over the real hierarchy and the deviations from formula (8) and
// from the published value.
type TableIICell struct {
	Row                analytic.TableIIRow `json:"row"`
	MC                 reliability.Result  `json:"mc"`
	DeviationFormula   float64             `json:"deviation_formula"`
	DeviationPublished float64             `json:"deviation_published"`
	WithinCI           bool                `json:"within_ci"`
}

// CompareTableII estimates every Table II cell by fault injection,
// one cell per worker-pool job. Each cell owns a fresh estimator
// seeded from (seed, cell index), so — unlike the shared-trials
// rgbtables path — cells are independent and order-insensitive.
func CompareTableII(trials, workers int, seed uint64) []TableIICell {
	rows := analytic.TableII()
	out := make([]TableIICell, len(rows))
	fanOut(len(rows), workers, func(i int) {
		row := rows[i]
		mc := reliability.TableIICell(row.H, row.R, row.F, row.K, trials, runSeed(seed, i, 0))
		out[i] = TableIICell{
			Row:                row,
			MC:                 mc,
			DeviationFormula:   mc.FW - row.FW,
			DeviationPublished: mc.FW - row.FWPublished,
			WithinCI:           mc.WithinCI(),
		}
	})
	return out
}

// TableIText renders a Table I comparison as an aligned text table.
func TableIText(cells []TableICell) string {
	tb := metrics.NewTable("n", "r", "HCN_Tree", "meas_Tree", "dev", "HCN_Ring", "meas_Ring", "dev")
	for _, c := range cells {
		tb.AddRow(
			c.Row.N, c.Row.R,
			c.Row.HCNTree, c.MeasuredTree, fmt.Sprintf("%+.3f", c.DeviationTree),
			c.Row.HCNRing, c.MeasuredRing, fmt.Sprintf("%+.3f", c.DeviationRing),
		)
	}
	return tb.String()
}

// TableIIText renders a Table II comparison as an aligned text table.
func TableIIText(cells []TableIICell) string {
	tb := metrics.NewTable("n", "f(%)", "k", "formula8(%)", "paper(%)", "MC(%)", "MC 95% CI", "inCI")
	for _, c := range cells {
		tb.AddRow(
			c.Row.N,
			fmt.Sprintf("%.1f", c.Row.F*100),
			c.Row.K,
			analytic.FWPercent(c.Row.FW),
			analytic.FWPercent(c.Row.FWPublished),
			analytic.FWPercent(c.MC.FW),
			fmt.Sprintf("[%.3f, %.3f]", c.MC.Lo*100, c.MC.Hi*100),
			c.WithinCI,
		)
	}
	return tb.String()
}

// deviation returns (measured − analytic) / analytic, the relative
// error of the simulation against the closed form.
func deviation(measured, analyticVal float64) float64 {
	if analyticVal == 0 {
		return 0
	}
	return (measured - analyticVal) / analyticVal
}
