package experiment

import (
	"encoding/json"
	"math"
	"reflect"
	"testing"
	"time"

	"github.com/rgbproto/rgb/internal/core"
	"github.com/rgbproto/rgb/internal/mathx"
)

// smallGrid is a fast 4-cell grid used by the determinism tests.
func smallGrid() Grid {
	return Grid{
		H:        []int{2},
		R:        []int{3},
		Members:  []int{8},
		Loss:     []float64{0, 0.005},
		Schemes:  []string{"tms", "bms"},
		Duration: 5 * time.Second,
		Queries:  1,
	}
}

func TestGridExpandSizeAndOrder(t *testing.T) {
	g := Grid{
		H:       []int{2, 3},
		R:       []int{3, 4},
		Members: []int{10},
		Schemes: []string{"tms", "bms"},
	}
	cells := g.Expand()
	if got, want := len(cells), g.Size(); got != want {
		t.Fatalf("Expand produced %d cells, Size says %d", got, want)
	}
	if len(cells) != 8 {
		t.Fatalf("expected 2x2x2 = 8 cells, got %d", len(cells))
	}
	// Fixed nesting order: H outermost, Schemes innermost.
	wantOrder := []struct {
		h, r   int
		scheme string
	}{
		{2, 3, "tms"}, {2, 3, "bms"}, {2, 4, "tms"}, {2, 4, "bms"},
		{3, 3, "tms"}, {3, 3, "bms"}, {3, 4, "tms"}, {3, 4, "bms"},
	}
	for i, w := range wantOrder {
		c := cells[i]
		if c.H != w.h || c.R != w.r || c.Scheme != w.scheme {
			t.Errorf("cell %d: got (h=%d r=%d %s), want (h=%d r=%d %s)",
				i, c.H, c.R, c.Scheme, w.h, w.r, w.scheme)
		}
	}
	// Defaults fill unspecified axes.
	if cells[0].JoinRate != 0.5 || cells[0].Duration != 30*time.Second {
		t.Errorf("defaults not applied: %+v", cells[0])
	}
}

func TestGridValidate(t *testing.T) {
	bad := []Grid{
		{H: []int{0}},
		{R: []int{1}},
		{Loss: []float64{1.5}},
		{Crash: []int{-1}},
		{Schemes: []string{"nonsense"}},
		{Schemes: []string{"ims:x"}},
	}
	for i, g := range bad {
		if err := g.Validate(); err == nil {
			t.Errorf("grid %d: expected validation error", i)
		}
	}
	if err := (Grid{}).Validate(); err != nil {
		t.Errorf("empty grid should normalize to valid defaults: %v", err)
	}
}

func TestResolveScheme(t *testing.T) {
	cases := []struct {
		name  string
		h     int
		level int
	}{
		{"tms", 3, 0},
		{"bms", 3, 2},
		{"ims:1", 3, 1},
		{"ims:7", 3, 2}, // clamps to bottommost
	}
	for _, c := range cases {
		q, err := ResolveScheme(c.name, c.h)
		if err != nil {
			t.Fatalf("ResolveScheme(%q, %d): %v", c.name, c.h, err)
		}
		if q != core.IMS(c.level) {
			t.Errorf("ResolveScheme(%q, %d) = level %d, want %d", c.name, c.h, q.Level, c.level)
		}
	}
	for _, name := range []string{"", "topmost", "ims:", "ims:-1"} {
		if _, err := ResolveScheme(name, 3); err == nil {
			t.Errorf("ResolveScheme(%q) should fail", name)
		}
	}
}

// TestRunScenarioDeterministic re-runs one cell with the same seed and
// requires identical results (modulo wall time).
func TestRunScenarioDeterministic(t *testing.T) {
	sc := smallGrid().Expand()[1] // the loss>0, tms cell
	a := RunScenario(sc, 42)
	b := RunScenario(sc, 42)
	a.WallTime, b.WallTime = 0, 0
	if !reflect.DeepEqual(a.Metrics(), b.Metrics()) {
		t.Fatalf("same (scenario, seed) produced different metrics:\n%v\nvs\n%v",
			a.Metrics(), b.Metrics())
	}
	c := RunScenario(sc, 43)
	if reflect.DeepEqual(a.Metrics(), c.Metrics()) {
		t.Fatalf("different seeds produced identical metrics — seed not applied")
	}
}

// TestSweepWorkerCountInvariance is the core contract: the JSON report
// must be bit-identical for 1 worker and many workers.
func TestSweepWorkerCountInvariance(t *testing.T) {
	g := smallGrid()
	serial, err := Sweep(g, Options{Seeds: 3, BaseSeed: 7, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Sweep(g, Options{Seeds: 3, BaseSeed: 7, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	js, err := json.Marshal(serial)
	if err != nil {
		t.Fatal(err)
	}
	jp, err := json.Marshal(parallel)
	if err != nil {
		t.Fatal(err)
	}
	if string(js) != string(jp) {
		t.Fatalf("worker count changed the report:\nserial:   %s\nparallel: %s", js, jp)
	}
	if len(serial.Cells) != g.Size() {
		t.Fatalf("report has %d cells, grid has %d", len(serial.Cells), g.Size())
	}
	for _, cell := range serial.Cells {
		if cell.Seeds != 3 {
			t.Errorf("cell %s aggregated %d seeds, want 3", cell.Scenario.Name(), cell.Seeds)
		}
	}
}

// TestSummarizeFixture checks the aggregate statistics on a
// hand-computed fixture: three runs whose "rounds" metric is 1, 2, 3.
//   - mean  = 2
//   - std   = sample stddev of {1,2,3} = 1
//   - ci95  = 1.96 * 1 / sqrt(3) ≈ 1.131607...
func TestSummarizeFixture(t *testing.T) {
	sc := Scenario{H: 2, R: 3, Dissemination: "full", Scheme: "tms"}
	runs := make([]RunResult, 3)
	for i := range runs {
		runs[i] = RunResult{
			Scenario: sc,
			Counters: map[string]int64{"rounds": int64(i + 1)},
		}
	}
	cell := summarize(sc, runs)
	st := cell.Metrics["rounds"]
	if st.Mean != 2 {
		t.Errorf("mean = %v, want 2", st.Mean)
	}
	if st.Std != 1 {
		t.Errorf("std = %v, want 1", st.Std)
	}
	if st.Min != 1 || st.Max != 3 {
		t.Errorf("min/max = %v/%v, want 1/3", st.Min, st.Max)
	}
	wantCI := 1.96 / math.Sqrt(3)
	if math.Abs(st.CI95-wantCI) > 1e-12 {
		t.Errorf("ci95 = %v, want %v", st.CI95, wantCI)
	}
	// A metric identical across runs has zero spread.
	if zero := cell.Metrics["repairs"]; zero.Mean != 0 || zero.Std != 0 || zero.CI95 != 0 {
		t.Errorf("constant metric summarized as %+v, want all zero", zero)
	}
}

// TestStatOfSingleObservation: one seed means no spread estimate.
func TestStatOfSingleObservation(t *testing.T) {
	s := &mathx.Summary{}
	s.Add(5)
	st := statOf(s)
	if st.Mean != 5 || st.Std != 0 || st.CI95 != 0 || st.Min != 5 || st.Max != 5 {
		t.Errorf("statOf single obs = %+v", st)
	}
}

func TestFanOutCoversAllJobs(t *testing.T) {
	for _, workers := range []int{1, 3, 16} {
		hits := make([]int64, 100)
		fanOut(len(hits), workers, func(i int) { hits[i]++ })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: job %d ran %d times", workers, i, h)
			}
		}
	}
}

// TestCompareDeterminism: the analytic comparison modes must also be
// worker-count invariant.
func TestCompareDeterminism(t *testing.T) {
	a := CompareTableII(500, 1, 9)
	b := CompareTableII(500, 6, 9)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("CompareTableII differs across worker counts")
	}
	for _, cell := range a {
		if math.Abs(cell.MC.FW-cell.Row.FW) > 0.05 {
			t.Errorf("MC estimate %.4f far from formula %.4f at n=%d f=%g k=%d",
				cell.MC.FW, cell.Row.FW, cell.Row.N, cell.Row.F, cell.Row.K)
		}
	}
}
