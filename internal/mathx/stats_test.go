package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummaryBasics(t *testing.T) {
	var s Summary
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Fatalf("N = %d", s.N())
	}
	if got := s.Mean(); math.Abs(got-5) > 1e-12 {
		t.Errorf("Mean = %g, want 5", got)
	}
	// Population variance of this classic dataset is 4; sample variance
	// is 32/7.
	if got := s.Variance(); math.Abs(got-32.0/7.0) > 1e-12 {
		t.Errorf("Variance = %g, want %g", got, 32.0/7.0)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("Min/Max = %g/%g", s.Min(), s.Max())
	}
}

func TestSummaryEmpty(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Variance() != 0 || s.N() != 0 {
		t.Error("empty summary should be all zeros")
	}
}

func TestSummarySingle(t *testing.T) {
	var s Summary
	s.Add(3.5)
	if s.Variance() != 0 || s.StdDev() != 0 {
		t.Error("single observation has zero variance")
	}
	if s.Min() != 3.5 || s.Max() != 3.5 {
		t.Error("min/max of single observation")
	}
}

func TestSummaryMergeEquivalence(t *testing.T) {
	r := NewRNG(101)
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = r.Float64()*100 - 50
	}
	var whole, left, right Summary
	for i, x := range xs {
		whole.Add(x)
		if i < 200 {
			left.Add(x)
		} else {
			right.Add(x)
		}
	}
	left.Merge(&right)
	if left.N() != whole.N() {
		t.Fatalf("merged N = %d, want %d", left.N(), whole.N())
	}
	if math.Abs(left.Mean()-whole.Mean()) > 1e-9 {
		t.Errorf("merged mean %g vs %g", left.Mean(), whole.Mean())
	}
	if math.Abs(left.Variance()-whole.Variance()) > 1e-9 {
		t.Errorf("merged variance %g vs %g", left.Variance(), whole.Variance())
	}
	if left.Min() != whole.Min() || left.Max() != whole.Max() {
		t.Error("merged min/max mismatch")
	}
}

func TestSummaryMergeEmptySides(t *testing.T) {
	var a, b Summary
	a.Add(1)
	a.Add(2)
	before := a
	a.Merge(&b) // merging empty is a no-op
	if a != before {
		t.Error("merge with empty changed summary")
	}
	b.Merge(&a) // merging into empty copies
	if b.N() != 2 || b.Mean() != 1.5 {
		t.Error("merge into empty failed")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 10}, {0.5, 5.5}, {0.25, 3.25}, {0.9, 9.1},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Quantile(%g) = %g, want %g", c.q, got, c.want)
		}
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("Quantile mutated its input")
	}
}

func TestQuantilePanicsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Quantile(nil, 0.5)
}

func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		xs := make([]float64, 20+r.Intn(50))
		for i := range xs {
			xs[i] = r.Float64() * 1000
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.05 {
			v := Quantile(xs, q)
			if v < prev-1e-9 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestWilsonInterval(t *testing.T) {
	lo, hi := WilsonInterval(50, 100, 1.96)
	if lo >= 0.5 || hi <= 0.5 {
		t.Errorf("interval [%g, %g] should contain 0.5", lo, hi)
	}
	if hi-lo > 0.25 {
		t.Errorf("interval too wide: [%g, %g]", lo, hi)
	}
	// All successes: interval must stay within [0,1] and include values
	// near 1.
	lo, hi = WilsonInterval(100, 100, 1.96)
	if hi < 0.999 || hi > 1 {
		t.Errorf("hi = %g, want close to (and at most) 1", hi)
	}
	if lo < 0.9 {
		t.Errorf("lo = %g, too loose for 100/100", lo)
	}
	lo, hi = WilsonInterval(0, 0, 1.96)
	if lo != 0 || hi != 1 {
		t.Errorf("empty trials should be [0,1], got [%g,%g]", lo, hi)
	}
}

func TestWilsonIntervalShrinksWithN(t *testing.T) {
	lo1, hi1 := WilsonInterval(30, 100, 1.96)
	lo2, hi2 := WilsonInterval(3000, 10000, 1.96)
	if (hi2 - lo2) >= (hi1 - lo1) {
		t.Error("interval should shrink as n grows")
	}
}

func TestAlmostEqual(t *testing.T) {
	if !AlmostEqual(1.0, 1.0+1e-13, 1e-12) {
		t.Error("tiny difference should be equal")
	}
	if AlmostEqual(1.0, 1.1, 1e-3) {
		t.Error("0.1 apart should not be equal at tol 1e-3")
	}
	if !AlmostEqual(1e15, 1e15+1, 0) {
		t.Error("relative tolerance should kick in for large values")
	}
}
