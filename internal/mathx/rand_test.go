package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("streams diverged at %d: %d != %d", i, av, bv)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 identical outputs", same)
	}
}

func TestRNGZeroSeedValid(t *testing.T) {
	r := NewRNG(0)
	// Must not be stuck at zero.
	var nonzero bool
	for i := 0; i < 10; i++ {
		if r.Uint64() != 0 {
			nonzero = true
		}
	}
	if !nonzero {
		t.Fatal("zero-seeded RNG produced only zeros")
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := NewRNG(7)
	c1 := parent.Split()
	c2 := parent.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if c1.Uint64() == c2.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split children produced %d/100 identical outputs", same)
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(3)
	for n := 1; n <= 64; n++ {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Intn(0)")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := NewRNG(11)
	const n, trials = 10, 100000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(trials) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d: got %d want ~%.0f", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(5)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %g", f)
		}
	}
}

func TestBernoulliExtremes(t *testing.T) {
	r := NewRNG(9)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

func TestBernoulliMean(t *testing.T) {
	r := NewRNG(13)
	const p, trials = 0.3, 200000
	hits := 0
	for i := 0; i < trials; i++ {
		if r.Bernoulli(p) {
			hits++
		}
	}
	got := float64(hits) / trials
	if math.Abs(got-p) > 0.01 {
		t.Fatalf("Bernoulli(%g) mean = %g", p, got)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := NewRNG(17)
	const lambda, trials = 2.0, 200000
	sum := 0.0
	for i := 0; i < trials; i++ {
		v := r.ExpFloat64(lambda)
		if v < 0 {
			t.Fatalf("negative exponential draw %g", v)
		}
		sum += v
	}
	mean := sum / trials
	if math.Abs(mean-1/lambda) > 0.02 {
		t.Fatalf("exp mean = %g, want %g", mean, 1/lambda)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(23)
	for n := 0; n <= 20; n++ {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestPermProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%32) + 1
		p := NewRNG(seed).Perm(n)
		sum := 0
		for _, v := range p {
			sum += v
		}
		return sum == n*(n-1)/2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBinomialRange(t *testing.T) {
	r := NewRNG(29)
	for i := 0; i < 1000; i++ {
		k := r.Binomial(10, 0.5)
		if k < 0 || k > 10 {
			t.Fatalf("Binomial out of range: %d", k)
		}
	}
}

func TestBinomialMean(t *testing.T) {
	r := NewRNG(31)
	const n, p, trials = 50, 0.2, 50000
	sum := 0
	for i := 0; i < trials; i++ {
		sum += r.Binomial(n, p)
	}
	mean := float64(sum) / trials
	if math.Abs(mean-n*p) > 0.1 {
		t.Fatalf("binomial mean = %g, want %g", mean, float64(n)*p)
	}
}

func TestUniformRange(t *testing.T) {
	r := NewRNG(37)
	for i := 0; i < 10000; i++ {
		v := r.Uniform(3, 7)
		if v < 3 || v >= 7 {
			t.Fatalf("Uniform(3,7) = %g", v)
		}
	}
}
