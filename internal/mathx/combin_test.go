package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLogFactorialSmall(t *testing.T) {
	want := []float64{1, 1, 2, 6, 24, 120, 720, 5040}
	for n, w := range want {
		got := math.Exp(LogFactorial(n))
		if math.Abs(got-w)/w > 1e-12 {
			t.Errorf("exp(LogFactorial(%d)) = %g, want %g", n, got, w)
		}
	}
}

func TestLogFactorialLargeMatchesLgamma(t *testing.T) {
	for _, n := range []int{150, 500, 1200} {
		lg, _ := math.Lgamma(float64(n) + 1)
		if got := LogFactorial(n); math.Abs(got-lg) > 1e-9 {
			t.Errorf("LogFactorial(%d) = %g, want %g", n, got, lg)
		}
	}
}

func TestChooseExactValues(t *testing.T) {
	cases := []struct {
		n, k int
		want float64
	}{
		{0, 0, 1}, {5, 0, 1}, {5, 5, 1}, {5, 2, 10}, {10, 3, 120},
		{31, 2, 465}, {111, 2, 6105}, {111, 1, 111}, {52, 5, 2598960},
	}
	for _, c := range cases {
		got := Choose(c.n, c.k)
		if math.Abs(got-c.want)/c.want > 1e-9 {
			t.Errorf("Choose(%d,%d) = %g, want %g", c.n, c.k, got, c.want)
		}
	}
}

func TestChooseOutOfRange(t *testing.T) {
	if Choose(5, -1) != 0 || Choose(5, 6) != 0 {
		t.Error("out-of-range Choose should be 0")
	}
	if !math.IsInf(LogChoose(5, 6), -1) {
		t.Error("LogChoose out of range should be -Inf")
	}
}

func TestChooseSymmetryProperty(t *testing.T) {
	f := func(nRaw, kRaw uint8) bool {
		n := int(nRaw % 60)
		k := 0
		if n > 0 {
			k = int(kRaw) % (n + 1)
		}
		a, b := Choose(n, k), Choose(n, n-k)
		return AlmostEqual(a, b, 1e-6*math.Max(a, 1))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPascalIdentityProperty(t *testing.T) {
	f := func(nRaw, kRaw uint8) bool {
		n := int(nRaw%50) + 1
		k := int(kRaw)%n + 1 // 1..n
		lhs := Choose(n, k)
		rhs := Choose(n-1, k-1) + Choose(n-1, k)
		return AlmostEqual(lhs, rhs, 1e-6*math.Max(lhs, 1))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBinomialPMFSumsToOne(t *testing.T) {
	for _, n := range []int{1, 5, 31, 111} {
		for _, p := range []float64{0.001, 0.02, 0.5, 0.97} {
			sum := 0.0
			for k := 0; k <= n; k++ {
				sum += BinomialPMF(n, k, p)
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Errorf("PMF(n=%d,p=%g) sums to %g", n, p, sum)
			}
		}
	}
}

func TestBinomialPMFDegenerate(t *testing.T) {
	if BinomialPMF(5, 0, 0) != 1 || BinomialPMF(5, 3, 0) != 0 {
		t.Error("p=0 PMF wrong")
	}
	if BinomialPMF(5, 5, 1) != 1 || BinomialPMF(5, 4, 1) != 0 {
		t.Error("p=1 PMF wrong")
	}
	if BinomialPMF(5, -1, 0.5) != 0 || BinomialPMF(5, 6, 0.5) != 0 {
		t.Error("out-of-range PMF should be 0")
	}
}

func TestBinomialCDFMonotone(t *testing.T) {
	const n = 40
	const p = 0.13
	prev := 0.0
	for k := 0; k <= n; k++ {
		c := BinomialCDF(n, k, p)
		if c < prev-1e-12 {
			t.Fatalf("CDF not monotone at k=%d: %g < %g", k, c, prev)
		}
		prev = c
	}
	if math.Abs(prev-1) > 1e-9 {
		t.Fatalf("CDF(n) = %g, want 1", prev)
	}
	if BinomialCDF(n, -1, p) != 0 {
		t.Error("CDF(-1) should be 0")
	}
}

func TestPowInt(t *testing.T) {
	cases := []struct{ b, e, want int }{
		{2, 0, 1}, {2, 10, 1024}, {5, 3, 125}, {10, 4, 10000},
		{1, 100, 1}, {0, 0, 1}, {0, 3, 0}, {3, 7, 2187},
	}
	for _, c := range cases {
		if got := PowInt(c.b, c.e); got != c.want {
			t.Errorf("PowInt(%d,%d) = %d, want %d", c.b, c.e, got, c.want)
		}
	}
}

func TestPowIntPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	PowInt(2, -1)
}

func TestGeometricSum(t *testing.T) {
	cases := []struct{ r, m, want int }{
		{5, -1, 0}, {5, 0, 1}, {5, 1, 6}, {5, 2, 31}, {5, 3, 156},
		{10, 2, 111}, {10, 3, 1111}, {2, 4, 31}, {1, 4, 5},
	}
	for _, c := range cases {
		if got := GeometricSum(c.r, c.m); got != c.want {
			t.Errorf("GeometricSum(%d,%d) = %d, want %d", c.r, c.m, got, c.want)
		}
	}
}

func TestGeometricSumMatchesPowers(t *testing.T) {
	f := func(rRaw, mRaw uint8) bool {
		r := int(rRaw%9) + 2
		m := int(mRaw % 6)
		sum := 0
		for i := 0; i <= m; i++ {
			sum += PowInt(r, i)
		}
		return GeometricSum(r, m) == sum
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
