// Package mathx provides the deterministic random-number generation,
// combinatorics and summary statistics used throughout the RGB
// reproduction. Everything here is seedable and allocation-free on the
// hot paths so that simulations are bit-reproducible and cheap.
package mathx

import (
	"math"
	"math/bits"
)

// RNG is a small, fast, deterministic pseudo-random generator.
//
// The state update is xoshiro256** seeded via SplitMix64, the same
// construction used by the Go runtime for non-crypto randomness. A zero
// RNG is not valid; use NewRNG.
type RNG struct {
	s [4]uint64
}

// splitMix64 advances a SplitMix64 state and returns the next output.
// It is used only to expand seeds into full xoshiro state.
func splitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// SplitMix64 derives a well-mixed child seed from (seed, stream): the
// one-step SplitMix64 output of seed advanced by stream increments.
// It is the canonical way to split one base seed into independent
// deterministic streams (per experiment cell, per cluster group)
// without the streams correlating.
func SplitMix64(seed, stream uint64) uint64 {
	state := seed + 0x9e3779b97f4a7c15*stream
	return splitMix64(&state)
}

// NewRNG returns a generator deterministically derived from seed.
// Two RNGs built from the same seed produce identical streams.
func NewRNG(seed uint64) *RNG {
	r := new(RNG)
	sm := seed
	for i := range r.s {
		r.s[i] = splitMix64(&sm)
	}
	// xoshiro must not start at the all-zero state.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

// Split derives an independent child generator. The child stream is a
// deterministic function of the parent state, and the parent advances,
// so successive Split calls give unrelated streams. Useful for giving
// each simulated node its own generator while keeping global
// reproducibility.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64() ^ 0xd1b54a32d192ed03)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("mathx: Intn with non-positive n")
	}
	// Lemire's unbiased bounded generation.
	bound := uint64(n)
	threshold := -bound % bound
	for {
		hi, lo := bits.Mul64(r.Uint64(), bound)
		if lo >= threshold {
			return int(hi)
		}
	}
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bernoulli returns true with probability p.
func (r *RNG) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// ExpFloat64 returns an exponentially distributed value with rate
// lambda (mean 1/lambda). It panics if lambda <= 0.
func (r *RNG) ExpFloat64(lambda float64) float64 {
	if lambda <= 0 {
		panic("mathx: ExpFloat64 with non-positive rate")
	}
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u) / lambda
		}
	}
}

// Uniform returns a uniform float64 in [lo, hi).
func (r *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Perm returns a uniformly random permutation of [0, n) using
// Fisher-Yates.
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Binomial draws from Binomial(n, p) by inversion for small n and by
// direct Bernoulli summation otherwise. n is expected to be modest
// (ring and hierarchy sizes), so the O(n) path is fine.
func (r *RNG) Binomial(n int, p float64) int {
	if n < 0 {
		panic("mathx: Binomial with negative n")
	}
	k := 0
	for i := 0; i < n; i++ {
		if r.Bernoulli(p) {
			k++
		}
	}
	return k
}
