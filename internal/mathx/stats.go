package mathx

import (
	"math"
	"sort"
)

// Summary holds streaming summary statistics over float64 observations
// using Welford's online algorithm, which is numerically stable for
// long simulation runs.
type Summary struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add records one observation.
func (s *Summary) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	delta := x - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (x - s.mean)
}

// N returns the number of observations recorded.
func (s *Summary) N() int { return s.n }

// Mean returns the sample mean, or 0 if empty.
func (s *Summary) Mean() float64 { return s.mean }

// Min returns the smallest observation, or 0 if empty.
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest observation, or 0 if empty.
func (s *Summary) Max() float64 { return s.max }

// Variance returns the unbiased sample variance, or 0 with fewer than
// two observations.
func (s *Summary) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// StdDev returns the sample standard deviation.
func (s *Summary) StdDev() float64 { return math.Sqrt(s.Variance()) }

// Merge folds other into s, as if all of other's observations had been
// added to s (Chan et al. parallel variance combination).
func (s *Summary) Merge(other *Summary) {
	if other.n == 0 {
		return
	}
	if s.n == 0 {
		*s = *other
		return
	}
	n1, n2 := float64(s.n), float64(other.n)
	delta := other.mean - s.mean
	total := n1 + n2
	s.mean += delta * n2 / total
	s.m2 += other.m2 + delta*delta*n1*n2/total
	s.n += other.n
	if other.min < s.min {
		s.min = other.min
	}
	if other.max > s.max {
		s.max = other.max
	}
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics. xs is not modified. It
// panics on an empty slice.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("mathx: Quantile of empty slice")
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// WilsonInterval returns the Wilson score interval for a binomial
// proportion: successes k out of n trials at confidence level given by
// the normal quantile z (1.96 for ~95%). It is well behaved for
// proportions near 0 and 1, where the Monte-Carlo Function-Well
// estimates live.
func WilsonInterval(k, n int, z float64) (lo, hi float64) {
	if n == 0 {
		return 0, 1
	}
	p := float64(k) / float64(n)
	nf := float64(n)
	z2 := z * z
	denom := 1 + z2/nf
	center := (p + z2/(2*nf)) / denom
	half := z / denom * math.Sqrt(p*(1-p)/nf+z2/(4*nf*nf))
	lo, hi = center-half, center+half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}

// AbsDiff returns |a − b|.
func AbsDiff(a, b float64) float64 { return math.Abs(a - b) }

// AlmostEqual reports whether a and b agree to within tol in absolute
// terms or 1e-12 relative terms, whichever is looser.
func AlmostEqual(a, b, tol float64) bool {
	d := math.Abs(a - b)
	if d <= tol {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return d <= 1e-12*scale
}
