package mathx

import "math"

// LogFactorial returns ln(n!). Values up to a small threshold are
// tabulated exactly; larger inputs use math.Lgamma, which is accurate
// to within a few ulps for this range.
func LogFactorial(n int) float64 {
	if n < 0 {
		panic("mathx: LogFactorial of negative n")
	}
	if n < len(logFactTable) {
		return logFactTable[n]
	}
	lg, _ := math.Lgamma(float64(n) + 1)
	return lg
}

// logFactTable caches ln(k!) for small k, filled at init.
var logFactTable = func() [128]float64 {
	var t [128]float64
	acc := 0.0
	for i := 2; i < len(t); i++ {
		acc += math.Log(float64(i))
		t[i] = acc
	}
	return t
}()

// LogChoose returns ln(C(n, k)), and -Inf when the coefficient is zero
// (k < 0 or k > n).
func LogChoose(n, k int) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	if k == 0 || k == n {
		return 0
	}
	return LogFactorial(n) - LogFactorial(k) - LogFactorial(n-k)
}

// Choose returns C(n, k) as a float64. For the hierarchy sizes used in
// the paper (tn <= ~1111) this stays comfortably within float64 range
// for the small k that appear in formula (8).
func Choose(n, k int) float64 {
	lc := LogChoose(n, k)
	if math.IsInf(lc, -1) {
		return 0
	}
	return math.Exp(lc)
}

// BinomialPMF returns P[X = k] for X ~ Binomial(n, p), computed in log
// space so extreme tail values do not underflow prematurely.
func BinomialPMF(n, k int, p float64) float64 {
	if k < 0 || k > n {
		return 0
	}
	if p <= 0 {
		if k == 0 {
			return 1
		}
		return 0
	}
	if p >= 1 {
		if k == n {
			return 1
		}
		return 0
	}
	logp := LogChoose(n, k) + float64(k)*math.Log(p) + float64(n-k)*math.Log1p(-p)
	return math.Exp(logp)
}

// BinomialCDF returns P[X <= k] for X ~ Binomial(n, p) by direct
// summation of the PMF. k is clamped to [−1, n].
func BinomialCDF(n, k int, p float64) float64 {
	if k < 0 {
		return 0
	}
	if k >= n {
		return 1
	}
	sum := 0.0
	for i := 0; i <= k; i++ {
		sum += BinomialPMF(n, i, p)
	}
	if sum > 1 {
		sum = 1
	}
	return sum
}

// PowInt returns base^exp for non-negative integer exponents using
// binary exponentiation. It exists because the hop-count formulas use
// many small integer powers and math.Pow's rounding on exact integers
// is best avoided in table reproduction.
func PowInt(base, exp int) int {
	if exp < 0 {
		panic("mathx: PowInt with negative exponent")
	}
	result := 1
	b := base
	for e := exp; e > 0; e >>= 1 {
		if e&1 == 1 {
			result *= b
		}
		b *= b
	}
	return result
}

// GeometricSum returns sum_{i=0}^{m} r^i for integer r >= 0, m >= -1.
// GeometricSum(r, -1) is 0 by convention (empty sum), matching the
// inner sums in the paper's formulas (2) and (4).
func GeometricSum(r, m int) int {
	if m < 0 {
		return 0
	}
	sum := 0
	term := 1
	for i := 0; i <= m; i++ {
		sum += term
		term *= r
	}
	return sum
}
