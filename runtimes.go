package rgb

import (
	"github.com/rgbproto/rgb/internal/discovery"
	"github.com/rgbproto/rgb/internal/runtime"
	"github.com/rgbproto/rgb/internal/simnet"
)

// Runtime substrate: the Service runs the protocol engine over a
// pluggable Clock (time and timers) and Transport (message delivery),
// bundled as a Runtime. Two implementations ship with the package:
//
//   - the deterministic discrete-event simulator (NewSimRuntime, the
//     default), where protocol time is virtual and a fixed seed makes
//     runs bit-reproducible; and
//   - the live in-process runtime (NewLiveRuntime), where timers are
//     real time.Timers and per-node mailbox goroutines deliver
//     messages — the engine demonstrably does not depend on the
//     simulator.
type (
	// Runtime bundles a Clock and Transport with drive operations.
	Runtime = runtime.Runtime
	// Clock provides protocol time and timers.
	Clock = runtime.Clock
	// Transport is the message plane between network entities.
	Transport = runtime.Transport
	// Stats aggregates transport-level delivery counters.
	Stats = runtime.Stats
	// LiveConfig parameterizes a live in-process runtime.
	LiveConfig = runtime.LiveConfig

	// NetConfig parameterizes a networked UDP runtime (see Listen and
	// Dial; WithNetRuntime accepts one directly for full control).
	NetConfig = runtime.NetConfig

	// NetStats counts wire-level events of a networked runtime:
	// decode errors, version mismatches, routing misses, relays, and
	// injected faults.
	NetStats = runtime.NetStats

	// FaultPlan configures seeded adversarial fault injection
	// (WithFaults): per-message probabilities for corrupt, duplicate/
	// replay, misroute and reorder.
	FaultPlan = runtime.FaultPlan

	// FaultStats counts the faults a plan injected (engine-level
	// substrates; the networked substrate counts into NetStats).
	FaultStats = runtime.FaultStats

	// NetRuntime is the networked UDP substrate. Most callers obtain
	// one implicitly through Listen/Dial; the concrete type gives
	// access to LocalAddr and NetStats.
	NetRuntime = runtime.NetRuntime

	// BootstrapInfo reports what a seed bootstrap (WithSeeds) learned
	// about a deployment: hierarchy shape, slot count, and the slot
	// this process claimed (negative for a slotless observer).
	BootstrapInfo = runtime.BootstrapInfo

	// PeerInfo is one entry of a networked deployment's live peer
	// table: slot, address, liveness state, last-seen age and frame
	// count (see Service.Peers and Cluster.Peers).
	PeerInfo = discovery.PeerInfo

	// PeerState is a peer-table liveness state (PeerUp, PeerSuspect,
	// PeerEvicted).
	PeerState = discovery.State

	// Kind classifies messages for hop-count accounting.
	Kind = runtime.Kind

	// LatencyModel decides the delivery delay of each message.
	LatencyModel = runtime.LatencyModel
	// ConstantLatency delivers every message after a fixed delay.
	ConstantLatency = runtime.ConstantLatency
	// UniformLatency delivers after a uniform delay in [Min, Max).
	UniformLatency = runtime.UniformLatency
	// TierLatency models the 4-tier architecture's per-tier delays.
	TierLatency = runtime.TierLatency
)

// Peer-table liveness states (PeerInfo.State): a peer is up while its
// frames keep arriving, suspect once it has been silent past
// NetConfig.SuspectAfter (and is being probed), and evicted once silent
// past EvictAfter — an evicted slot stops routing and its entities are
// failed out of their rings until the peer returns.
const (
	PeerUp      = discovery.StateUp
	PeerSuspect = discovery.StateSuspect
	PeerEvicted = discovery.StateEvicted
)

// Message kinds, for per-kind delivery accounting (Stats.DeliveredOf).
const (
	KindToken     = runtime.KindToken
	KindNotify    = runtime.KindNotify
	KindAck       = runtime.KindAck
	KindMemberMsg = runtime.KindMemberMsg
	KindQuery     = runtime.KindQuery
	KindReply     = runtime.KindReply
	KindControl   = runtime.KindControl
)

// DefaultTierLatency is the standard mobile-Internet latency profile:
// 2ms inside an access network, 10ms across an AS, 50ms between ASs.
func DefaultTierLatency() TierLatency { return runtime.DefaultTierLatency() }

// NewSimRuntime builds a deterministic simulated runtime: a virtual
// clock over an event kernel and a simulated message plane. latency
// nil selects the default 4-tier profile. Runs with a fixed seed are
// bit-reproducible.
func NewSimRuntime(latency LatencyModel, seed uint64) Runtime {
	return simnet.NewSimRuntime(latency, seed)
}

// NewLiveRuntime starts a live in-process runtime: real timers,
// per-node mailbox goroutines, and a single engine goroutine
// serializing all protocol state access. The caller (or the Service
// that owns it) must Close it.
func NewLiveRuntime(cfg LiveConfig) Runtime {
	return runtime.NewLiveRuntime(cfg)
}

// NewNetRuntime binds a UDP socket and starts a networked runtime:
// the same engine discipline as NewLiveRuntime, with the message
// plane replaced by real datagrams through the wire codec. Most
// callers should use Listen/Dial, which also wire up the hierarchy
// partition and address book.
func NewNetRuntime(cfg NetConfig) (*NetRuntime, error) {
	return runtime.NewNetRuntime(cfg)
}
