package rgb

import "github.com/rgbproto/rgb/internal/core"

// Membership events delivered on Watch subscriptions. Member events
// are emitted when the change commits at the topmost ring (the
// authoritative view Members reads), exactly once per operation;
// repair events are emitted when a ring holder excludes a faulty
// entity. Under the simulated runtime the event order is
// deterministic for a fixed seed.
type (
	// MembershipEvent is one observed membership change or ring repair.
	MembershipEvent = core.Event
	// MembershipEventKind is the type of a MembershipEvent.
	MembershipEventKind = core.EventKind
)

// Membership event kinds.
const (
	// EventJoin: a Member-Join committed.
	EventJoin = core.EventJoin
	// EventLeave: a voluntary Member-Leave committed.
	EventLeave = core.EventLeave
	// EventFail: a detected Member-Failure committed.
	EventFail = core.EventFail
	// EventHandoff: a Member-Handoff location change committed.
	EventHandoff = core.EventHandoff
	// EventRepair: a local ring repair excluded a faulty entity.
	EventRepair = core.EventRepair
	// EventDropped: a synthetic gap marker — the subscriber fell
	// behind and Count events were lost since its last delivered
	// event (see the Watch delivery contract).
	EventDropped = core.EventDropped
)
